// Command repro regenerates every table and figure of the paper's
// evaluation into the results/ directory: aligned text tables (*.txt) and
// plottable CSVs (*.csv).
//
// Each experiment's (policy × app × seed) grid runs on a bounded worker
// pool; -parallel sets the worker count (default GOMAXPROCS). Parallel runs
// are byte-identical to serial ones — every work unit is self-contained and
// rows are assembled in declared order (see DESIGN.md).
//
// Usage:
//
//	repro                 # quick scale, all experiments, GOMAXPROCS workers
//	repro -scale full     # paper-scale (slow: trains on 360 s episodes)
//	repro -only fig7,table3
//	repro -parallel 1     # serial execution
//	repro -out results
//	repro -cpuprofile cpu.prof -memprofile mem.prof   # pprof the run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/deeppower/deeppower/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick|full")
		only      = flag.String("only", "", "comma-separated experiment subset (e.g. fig7,table3)")
		outDir    = flag.String("out", "results", "output directory")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"worker count for experiment grids (<= 0 means GOMAXPROCS)")
		fleetShards = flag.Int("fleet-shards", 0,
			"override the fleet harness's server count (0 keeps the scale's default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		log.Fatalf("unknown scale %q (quick|full)", *scaleName)
	}
	if *fleetShards > 0 {
		scale.FleetShards = *fleetShards
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	selected := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			if _, err := exp.HarnessByName(n); err != nil {
				log.Fatal(err)
			}
			selected[n] = true
		}
	}

	// SIGINT/SIGTERM cancel the run: in-flight work units finish, queued
	// units are never dispatched, and no partial artifacts are written for
	// the interrupted experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &writer{dir: *outDir}
	var timings []harnessTiming
	for _, h := range exp.Harnesses() {
		if len(selected) > 0 && !selected[h.Name] {
			continue
		}
		start := time.Now()
		log.Printf("running %s ...", h.Name)
		arts, err := h.Run(ctx, scale, *parallel)
		if err != nil {
			if ctx.Err() != nil {
				log.Fatalf("interrupted during %s", h.Name)
			}
			log.Fatalf("%s: %v", h.Name, err)
		}
		for _, a := range arts {
			if err := w.write(a); err != nil {
				log.Fatalf("%s: %v", h.Name, err)
			}
		}
		elapsed := time.Since(start)
		timings = append(timings, harnessTiming{Name: h.Name, Elapsed: elapsed, Artifacts: len(arts)})
		log.Printf("done %s (%v)", h.Name, elapsed.Round(time.Millisecond))
	}
	if len(timings) > 0 {
		tbl := timingTable(timings, *scaleName, *parallel)
		fmt.Println(tbl)
		path := filepath.Join(*outDir, "runner_timing.txt")
		if err := os.WriteFile(path, []byte(tbl), 0o644); err != nil {
			log.Fatalf("runner_timing: %v", err)
		}
	}
	log.Printf("artifacts written to %s", *outDir)
}

// harnessTiming is one harness's wall-clock cost in this run.
type harnessTiming struct {
	Name      string
	Elapsed   time.Duration
	Artifacts int
}

// timingTable renders the per-harness wall-clock summary written to
// runner_timing.txt: one row per harness plus a total, so scale or
// simulator-performance regressions are visible run over run.
func timingTable(timings []harnessTiming, scale string, parallel int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "runner timing — scale=%s parallel=%d\n", scale, parallel)
	fmt.Fprintf(&b, "%-16s %12s %10s\n", "harness", "wall clock", "artifacts")
	var total time.Duration
	arts := 0
	for _, t := range timings {
		fmt.Fprintf(&b, "%-16s %12s %10d\n",
			t.Name, t.Elapsed.Round(time.Millisecond), t.Artifacts)
		total += t.Elapsed
		arts += t.Artifacts
	}
	fmt.Fprintf(&b, "%-16s %12s %10d\n", "total", total.Round(time.Millisecond), arts)
	return b.String()
}

// writer renders artifacts to stdout (tables) and files.
type writer struct{ dir string }

func (w *writer) write(a exp.Artifact) error {
	if a.Ext == "txt" {
		fmt.Println(a.Data)
	}
	return os.WriteFile(filepath.Join(w.dir, a.Name+"."+a.Ext), []byte(a.Data), 0o644)
}
