// Command repro regenerates every table and figure of the paper's
// evaluation into the results/ directory: aligned text tables (*.txt) and
// plottable CSVs (*.csv).
//
// Each experiment's (policy × app × seed) grid runs on a bounded worker
// pool; -parallel sets the worker count (default GOMAXPROCS). Parallel runs
// are byte-identical to serial ones — every work unit is self-contained and
// rows are assembled in declared order (see DESIGN.md).
//
// Usage:
//
//	repro                 # quick scale, all experiments, GOMAXPROCS workers
//	repro -scale full     # paper-scale (slow: trains on 360 s episodes)
//	repro -only fig7,table3
//	repro -parallel 1     # serial execution
//	repro -out results
//	repro -cpuprofile cpu.prof -memprofile mem.prof   # pprof the run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/deeppower/deeppower/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick|full")
		only      = flag.String("only", "", "comma-separated experiment subset (e.g. fig7,table3)")
		outDir    = flag.String("out", "results", "output directory")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"worker count for experiment grids (<= 0 means GOMAXPROCS)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		log.Fatalf("unknown scale %q (quick|full)", *scaleName)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	selected := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			if _, err := exp.HarnessByName(n); err != nil {
				log.Fatal(err)
			}
			selected[n] = true
		}
	}

	// SIGINT/SIGTERM cancel the run: in-flight work units finish, queued
	// units are never dispatched, and no partial artifacts are written for
	// the interrupted experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &writer{dir: *outDir}
	for _, h := range exp.Harnesses() {
		if len(selected) > 0 && !selected[h.Name] {
			continue
		}
		start := time.Now()
		log.Printf("running %s ...", h.Name)
		arts, err := h.Run(ctx, scale, *parallel)
		if err != nil {
			if ctx.Err() != nil {
				log.Fatalf("interrupted during %s", h.Name)
			}
			log.Fatalf("%s: %v", h.Name, err)
		}
		for _, a := range arts {
			if err := w.write(a); err != nil {
				log.Fatalf("%s: %v", h.Name, err)
			}
		}
		log.Printf("done %s (%v)", h.Name, time.Since(start).Round(time.Millisecond))
	}
	log.Printf("artifacts written to %s", *outDir)
}

// writer renders artifacts to stdout (tables) and files.
type writer struct{ dir string }

func (w *writer) write(a exp.Artifact) error {
	if a.Ext == "txt" {
		fmt.Println(a.Data)
	}
	return os.WriteFile(filepath.Join(w.dir, a.Name+"."+a.Ext), []byte(a.Data), 0o644)
}
