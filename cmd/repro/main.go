// Command repro regenerates every table and figure of the paper's
// evaluation into the results/ directory: aligned text tables (*.txt) and
// plottable CSVs (*.csv).
//
// Usage:
//
//	repro                 # quick scale, all experiments
//	repro -scale full     # paper-scale (slow: trains on 360 s episodes)
//	repro -only fig7,table3
//	repro -out results
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/exp"
)

type experiment struct {
	name string
	run  func(scale exp.Scale, out *writer) error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick|full")
		only      = flag.String("only", "", "comma-separated experiment subset (e.g. fig7,table3)")
		outDir    = flag.String("out", "results", "output directory")
	)
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		log.Fatalf("unknown scale %q (quick|full)", *scaleName)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	selected := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			selected[n] = true
		}
	}

	w := &writer{dir: *outDir}
	for _, e := range experiments() {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		log.Printf("running %s ...", e.name)
		if err := e.run(scale, w); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		log.Printf("done %s (%v)", e.name, time.Since(start).Round(time.Millisecond))
	}
	log.Printf("artifacts written to %s", *outDir)
}

func experiments() []experiment {
	return []experiment{
		{"table1", func(_ exp.Scale, out *writer) error {
			return out.table("table1_method_comparison", exp.Table1())
		}},
		{"fig1", runFig1},
		{"fig2", runFig2},
		{"table2", runTable2},
		{"table3", runTable3},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"fig7", runFig7},
		{"fig8", runFig8},
		{"fig9", runFig9},
		{"fig10", runFig10},
		{"fig11", runFig11},
		{"overhead", runOverhead},
		{"ablation", runAblation},
		{"generalization", runGeneralization},
		{"crossover", runCrossover},
		{"colocation", runColocation},
		{"robustness", runRobustness},
	}
}

// writer renders tables to stdout and files.
type writer struct{ dir string }

func (w *writer) table(name string, t *exp.Table) error {
	fmt.Println(t.Render())
	return os.WriteFile(filepath.Join(w.dir, name+".txt"), []byte(t.Render()), 0o644)
}

func (w *writer) csv(name, content string) error {
	return os.WriteFile(filepath.Join(w.dir, name+".csv"), []byte(content), 0o644)
}

func runFig1(scale exp.Scale, out *writer) error {
	r := exp.Fig1(scale)
	if err := out.table("fig1_service_time_skew", r.Table()); err != nil {
		return err
	}
	return out.csv("fig1_cdf", r.CSVCurves())
}

func runFig2(scale exp.Scale, out *writer) error {
	for _, name := range []string{app.Masstree, app.Sphinx} {
		r, err := exp.Fig2(name, scale)
		if err != nil {
			return err
		}
		if err := out.table("fig2_rmse_"+name, r.Table()); err != nil {
			return err
		}
	}
	return nil
}

func runTable2(scale exp.Scale, out *writer) error {
	r, err := exp.Table2(5000)
	if err != nil {
		return err
	}
	return out.table("table2_inference_time", r.Table())
}

func runTable3(scale exp.Scale, out *writer) error {
	scale.Workers = 0 // Table 3 uses the paper's worker counts
	r, err := exp.Table3(scale)
	if err != nil {
		return err
	}
	return out.table("table3_tail_latency", r.Table())
}

func runFig4(scale exp.Scale, out *writer) error {
	r, err := exp.Fig4(scale)
	if err != nil {
		return err
	}
	if err := out.table("fig4_controller_trace_summary", r.Summary()); err != nil {
		return err
	}
	return out.csv("fig4_controller_trace", exp.CSVFreqTrace(r.Trace))
}

func runFig5(scale exp.Scale, out *writer) error {
	r := exp.Fig5(100)
	if err := out.table("fig5_scalefunc", r.Table()); err != nil {
		return err
	}
	return out.csv("fig5_scalefunc", r.CSVCurve())
}

func runFig6(scale exp.Scale, out *writer) error {
	r := exp.Fig6(scale)
	if err := out.table("fig6_workload", r.Table()); err != nil {
		return err
	}
	var sb strings.Builder
	if err := r.Trace.WriteCSV(&sb); err != nil {
		return err
	}
	return out.csv("fig6_workload", sb.String())
}

func runFig7(scale exp.Scale, out *writer) error {
	r, err := exp.Fig7(scale, nil)
	if err != nil {
		return err
	}
	if err := out.table("fig7a_power", r.PowerTable()); err != nil {
		return err
	}
	if err := out.table("fig7b_latency", r.LatencyTable()); err != nil {
		return err
	}
	return out.table("fig7c_quality", r.QualityTable())
}

func runFig8(scale exp.Scale, out *writer) error {
	r, err := exp.Fig8(scale)
	if err != nil {
		return err
	}
	if err := out.table("fig8_timeseries_summary", r.Table()); err != nil {
		return err
	}
	return out.csv("fig8_timeseries", r.CSVSeries())
}

func runFig9(scale exp.Scale, out *writer) error {
	for _, method := range []string{exp.MethodDeepPower, exp.MethodRetail, exp.MethodGemini} {
		r, err := exp.Fig9(method, scale)
		if err != nil {
			return err
		}
		if err := out.table("fig9_"+method+"_summary", r.Summary()); err != nil {
			return err
		}
		if err := out.csv("fig9_freq_"+method, exp.CSVFreqTrace(r.Trace)); err != nil {
			return err
		}
	}
	return nil
}

func runFig10(scale exp.Scale, out *writer) error {
	for _, method := range []string{exp.MethodDeepPower, exp.MethodRetail, exp.MethodGemini} {
		r, err := exp.Fig10(method, scale)
		if err != nil {
			return err
		}
		if err := out.table("fig10_"+method+"_summary", r.Summary()); err != nil {
			return err
		}
		if err := out.csv("fig10_freq_"+method, exp.CSVFreqTrace(r.Trace)); err != nil {
			return err
		}
	}
	return nil
}

func runFig11(scale exp.Scale, out *writer) error {
	r, err := exp.Fig11(scale)
	if err != nil {
		return err
	}
	for i, ft := range r.Traces {
		name := fmt.Sprintf("fig11_b%.2g_s%.2g", r.Settings[i].BaseFreq, r.Settings[i].ScalingCoef)
		if err := out.csv(name, exp.CSVFreqTrace(ft)); err != nil {
			return err
		}
	}
	return nil
}

func runOverhead(scale exp.Scale, out *writer) error {
	r, err := exp.Overhead()
	if err != nil {
		return err
	}
	return out.table("overhead", r.Table())
}

func runAblation(scale exp.Scale, out *writer) error {
	r, err := exp.Ablation(app.Xapian, scale, nil)
	if err != nil {
		return err
	}
	return out.table("ablation_xapian", r.Table())
}

func runGeneralization(scale exp.Scale, out *writer) error {
	r, err := exp.Generalization(app.Xapian, scale)
	if err != nil {
		return err
	}
	return out.table("generalization_xapian", r.Table())
}

func runCrossover(scale exp.Scale, out *writer) error {
	r, err := exp.Crossover(app.Xapian, scale, nil)
	if err != nil {
		return err
	}
	return out.table("crossover_xapian", r.Table())
}

func runColocation(scale exp.Scale, out *writer) error {
	r, err := exp.Colocation(app.Xapian, scale, nil)
	if err != nil {
		return err
	}
	return out.table("colocation_xapian", r.Table())
}

func runRobustness(scale exp.Scale, out *writer) error {
	r, err := exp.Robustness(scale, app.Xapian)
	if err != nil {
		return err
	}
	for i, t := range r.Tables() {
		if err := out.table("robustness_xapian_"+r.Scenarios[i], t); err != nil {
			return err
		}
	}
	return nil
}
