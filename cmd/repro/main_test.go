package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/exp"
)

func TestWriterCreatesArtifacts(t *testing.T) {
	dir := t.TempDir()
	w := &writer{dir: dir}
	tbl := &exp.Table{Title: "t", Columns: []string{"a"}}
	tbl.AddRow("1")
	if err := w.table("demo", tbl); err != nil {
		t.Fatal(err)
	}
	if err := w.csv("demo", "a\n1\n"); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "demo.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "1") {
		t.Error("table artifact missing content")
	}
	if _, err := os.Stat(filepath.Join(dir, "demo.csv")); err != nil {
		t.Error("csv artifact missing")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must have a harness entry.
	want := []string{
		"table1", "fig1", "fig2", "table2", "table3",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"overhead",
		// Extensions.
		"ablation", "generalization", "crossover", "colocation",
		"robustness",
	}
	have := map[string]bool{}
	for _, e := range experiments() {
		have[e.name] = true
		if e.run == nil {
			t.Errorf("experiment %s has no runner", e.name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("missing experiment %q", name)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(have), len(want))
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	// The sampling-only experiments must run end-to-end at a tiny scale.
	dir := t.TempDir()
	w := &writer{dir: dir}
	scale := exp.Quick()
	scale.Samples = 2000
	for _, name := range []string{"fig1", "fig5", "fig6", "table1"} {
		for _, e := range experiments() {
			if e.name != name {
				continue
			}
			if err := e.run(scale, w); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Errorf("only %d artifacts written", len(entries))
	}
}
