package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/deeppower/deeppower/internal/exp"
)

func TestWriterCreatesArtifacts(t *testing.T) {
	dir := t.TempDir()
	w := &writer{dir: dir}
	tbl := &exp.Table{Title: "t", Columns: []string{"a"}}
	tbl.AddRow("1")
	if err := w.write(exp.Artifact{Name: "demo", Ext: "txt", Data: tbl.Render()}); err != nil {
		t.Fatal(err)
	}
	if err := w.write(exp.Artifact{Name: "demo", Ext: "csv", Data: "a\n1\n"}); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "demo.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "1") {
		t.Error("table artifact missing content")
	}
	if _, err := os.Stat(filepath.Join(dir, "demo.csv")); err != nil {
		t.Error("csv artifact missing")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must have a harness entry. The
	// total entry count is deliberately NOT asserted here — that lives in
	// exactly one place, exp's TestRegistryShape (registrySize), so adding a
	// harness means updating one number, not hunting down stale copies.
	want := []string{
		"table1", "fig1", "fig2", "table2", "table3",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"overhead",
	}
	have := map[string]bool{}
	for _, h := range exp.Harnesses() {
		have[h.Name] = true
		if h.Run == nil {
			t.Errorf("experiment %s has no runner", h.Name)
		}
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("missing experiment %q", name)
		}
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	// The sampling-only experiments must run end-to-end at a tiny scale.
	dir := t.TempDir()
	w := &writer{dir: dir}
	scale := exp.Quick()
	scale.Samples = 2000
	for _, name := range []string{"fig1", "fig5", "fig6", "table1"} {
		h, err := exp.HarnessByName(name)
		if err != nil {
			t.Fatal(err)
		}
		arts, err := h.Run(context.Background(), scale, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, a := range arts {
			if err := w.write(a); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Errorf("only %d artifacts written", len(entries))
	}
}

func TestCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"fig1", "fig5", "table2", "overhead"} {
		h, err := exp.HarnessByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Run(ctx, exp.Quick(), 2); err == nil {
			t.Errorf("%s: cancelled context did not abort the harness", name)
		}
	}
}

func TestTimingTable(t *testing.T) {
	tbl := timingTable([]harnessTiming{
		{Name: "fig4", Elapsed: 120 * time.Millisecond, Artifacts: 2},
		{Name: "table3", Elapsed: 80 * time.Millisecond, Artifacts: 1},
	}, "quick", 4)
	for _, want := range []string{
		"scale=quick parallel=4", "fig4", "table3", "120ms", "80ms",
		"total", "200ms", // summed wall clock
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("timing table missing %q:\n%s", want, tbl)
		}
	}
}
