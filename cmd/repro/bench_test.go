package main

import (
	"context"
	"testing"

	"github.com/deeppower/deeppower/internal/exp"
)

// runSuite executes every registered harness at the given worker count —
// exactly what `repro -scale quick -parallel N` does, minus file I/O.
func runSuite(b *testing.B, scale exp.Scale, workers int) {
	ctx := context.Background()
	for _, h := range exp.Harnesses() {
		if _, err := h.Run(ctx, scale, workers); err != nil {
			b.Fatalf("%s: %v", h.Name, err)
		}
	}
}

// BenchmarkReproSerial times the Quick-scale suite with a single worker.
// Compare against BenchmarkReproParallel to measure the pool's speedup:
//
//	go test ./cmd/repro -bench 'BenchmarkRepro' -benchtime 1x
//
// Committed numbers live in EXPERIMENTS.md.
func BenchmarkReproSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuite(b, exp.Quick(), 1)
	}
}

// BenchmarkReproParallel times the same suite with 4 pool workers.
func BenchmarkReproParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuite(b, exp.Quick(), 4)
	}
}
