// Command deeppowerd is the live serving daemon: it runs a power-management
// policy against wall-clock time on simulated DVFS cores, admits requests
// over a minimal keep-alive HTTP/1.1 interface, and exposes control and
// telemetry endpoints.
//
//	deeppowerd -addr 127.0.0.1:9090 -method controller:0.4,0.5
//	deeppowerd -method registry -registry /var/lib/deeppower/ckpt
//	deeppowerd -pprof 127.0.0.1:6060 ...              # profiling listener
//
// Endpoints:
//
//	GET  /req                      hot path: admit one request (204)
//	GET  /healthz                  liveness
//	GET  /stats[?fresh=1]          telemetry snapshot (JSON)
//	GET  /policy                   active policy and registry history
//	POST /policy/reload            re-load the registry's current version
//	POST /policy/promote?version=N promote and hot-swap to version N
//	POST /policy/rollback          demote to the previous version
//
// The daemon exits on SIGINT/SIGTERM (or after -duration), printing the
// backend's settled result.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/deeppower/deeppower/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "listen address")
		method   = flag.String("method", "maxfreq", "policy: maxfreq | fixed:<ghz> | controller:<base>,<scale> | registry")
		registry = flag.String("registry", "", "checkpoint registry directory (required for -method registry)")
		horizon  = flag.Duration("horizon", time.Hour, "maximum serving run length")
		duration = flag.Duration("duration", 0, "stop after this long (0 = run until signal)")
		period   = flag.Duration("period", time.Millisecond, "wall-to-virtual bridge sync period")
		snapshot = flag.Duration("snapshot", 100*time.Millisecond, "telemetry publish period")
		latCap   = flag.Int("latency-cap", 65536, "retained latency samples before LatencyDropped counts")
		seed     = flag.Int64("seed", 1, "backend service-time seed")
		unguard  = flag.Bool("unguarded", false, "disable the safety guard (benchmarking only)")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this address (off when empty)")
	)
	flag.Parse()

	if *pprofOn != "" {
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	d, err := serve.NewDaemon(serve.DaemonConfig{
		Addr:          *addr,
		Method:        *method,
		RegistryDir:   *registry,
		Horizon:       *horizon,
		BridgePeriod:  *period,
		SnapshotEvery: *snapshot,
		LatencyCap:    *latCap,
		Seed:          *seed,
		Unguarded:     *unguard,
	})
	if err != nil {
		log.Fatalf("deeppowerd: %v", err)
	}
	if err := d.Start(); err != nil {
		log.Fatalf("deeppowerd: %v", err)
	}
	log.Printf("serving on %s (method %s)", d.Addr(), *method)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	<-ctx.Done()

	res := d.Stop()
	fmt.Printf("arrivals %d completions %d timeouts %d (rate %.4f) dropped-samples %d energy %.1fJ avg-power %.1fW\n",
		res.Counters.Arrivals, res.Counters.Completions, res.Counters.Timeouts,
		res.TimeoutRate, res.Counters.LatencyDropped, res.EnergyJ, res.AvgPowerW)
}
