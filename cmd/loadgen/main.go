// Command loadgen drives a deeppowerd daemon over loopback (or any TCP
// address) with ReqBench-style load: closed-loop (a fixed in-flight window
// per connection, measuring maximum sustainable throughput) or open-loop
// (request instants paced by a rate trace — the replayed diurnal day or an
// external seconds,rps CSV — independent of response progress).
//
//	loadgen -addr 127.0.0.1:9090 -duration 10s                 # closed loop
//	loadgen -mode open -peak-rps 120000 -base-rps 80000 ...    # diurnal replay
//	loadgen -mode open -trace trace.csv ...                    # CSV replay
//
// The summary reports client-side throughput and latency digests plus the
// daemon's own telemetry (SLA violations, dropped latency samples, guard
// interventions).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/deeppower/deeppower/internal/serve"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "daemon address")
		mode     = flag.String("mode", "closed", "closed | open")
		conns    = flag.Int("conns", 4, "persistent connections")
		pipeline = flag.Int("pipeline", 64, "closed-loop in-flight window per connection")
		duration = flag.Duration("duration", 10*time.Second, "generation window")
		traceCSV = flag.String("trace", "", "open-loop rate trace CSV (seconds,rps); empty = synthetic diurnal")
		baseRPS  = flag.Float64("base-rps", 80000, "diurnal trough rate (open loop)")
		peakRPS  = flag.Float64("peak-rps", 130000, "diurnal crest rate (open loop)")
		tracePer = flag.Duration("trace-period", 60*time.Second, "diurnal period (open loop)")
		seed     = flag.Int64("seed", 1, "diurnal trace seed")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := serve.GenConfig{
		Addr:     *addr,
		Conns:    *conns,
		Pipeline: *pipeline,
		Duration: *duration,
	}
	if *mode == "open" {
		if *traceCSV != "" {
			f, err := os.Open(*traceCSV)
			if err != nil {
				log.Fatalf("loadgen: %v", err)
			}
			tr, err := workload.ReadCSV(f)
			f.Close()
			if err != nil {
				log.Fatalf("loadgen: %v", err)
			}
			cfg.Trace = tr
		} else {
			dc := workload.DefaultDiurnal()
			dc.Period = sim.Time(*tracePer)
			dc.Buckets = int(tracePer.Seconds())
			if dc.Buckets < 10 {
				dc.Buckets = 10
			}
			dc.BaseRPS = *baseRPS
			dc.PeakRPS = *peakRPS
			dc.Seed = *seed
			cfg.Trace = workload.Diurnal(dc)
		}
	} else if *mode != "closed" {
		log.Fatalf("loadgen: unknown mode %q", *mode)
	}

	sum, err := serve.NewGenerator(cfg).Run()
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Print(sum.String())

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
	if sum.TransportErrors > 0 {
		os.Exit(1)
	}
}
