// Command tracegen emits request-rate traces as CSV — the synthetic diurnal
// e-commerce workload of Fig. 6, or a constant rate — for plotting or for
// driving external load generators.
//
// Usage:
//
//	tracegen                        # 360 s diurnal trace to stdout
//	tracegen -period 60 -peak 5000 -seed 7 -o trace.csv
//	tracegen -constant 1000 -period 60
package main

import (
	"flag"
	"io"
	"log"
	"os"

	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		period   = flag.Float64("period", 360, "trace period, seconds")
		peak     = flag.Float64("peak", 400, "peak requests/second")
		base     = flag.Float64("base", 100, "trough requests/second (diurnal only)")
		constant = flag.Float64("constant", 0, "emit a constant-rate trace at this RPS instead")
		seed     = flag.Int64("seed", 1, "random seed")
		outPath  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var trace *workload.Trace
	if *constant > 0 {
		trace = workload.Constant(*constant, sim.Seconds(*period))
	} else {
		cfg := workload.DefaultDiurnal()
		cfg.Period = sim.Seconds(*period)
		cfg.Buckets = int(*period)
		if cfg.Buckets < 10 {
			cfg.Buckets = 10
		}
		cfg.BaseRPS = *base
		cfg.PeakRPS = *peak
		cfg.Seed = *seed
		trace = workload.Diurnal(cfg)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := trace.WriteCSV(out); err != nil {
		log.Fatal(err)
	}
}
