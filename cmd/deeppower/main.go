// Command deeppower trains and evaluates power-management policies on the
// simulated latency-critical applications.
//
// Usage:
//
//	deeppower -app xapian -method deeppower -episodes 10 -duration 120
//	deeppower -app moses -method retail
//	deeppower -app xapian -method deeppower -save policy.json
//	deeppower -app xapian -policy policy.json
//	deeppower -compare -app xapian
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/deeppower/deeppower"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("deeppower: ")

	var (
		appName  = flag.String("app", deeppower.Xapian, "application: xapian|masstree|moses|sphinx|img-dnn")
		method   = flag.String("method", deeppower.MethodDeepPower, "method: deeppower|baseline|retail|gemini|fixed:<ghz>|controller:<b>,<s>")
		episodes = flag.Int("episodes", 10, "DeepPower training episodes")
		duration = flag.Float64("duration", 120, "evaluation duration, virtual seconds")
		period   = flag.Float64("period", 120, "diurnal trace period, virtual seconds")
		workers  = flag.Int("workers", 0, "worker/core count override (0 = paper value)")
		peak     = flag.Float64("peak", 0, "peak load fraction override (0 = per-app default)")
		seed     = flag.Int64("seed", 1, "random seed")
		save     = flag.String("save", "", "after training, save the actor network to this file")
		policy   = flag.String("policy", "", "load a trained actor network instead of training")
		compare  = flag.Bool("compare", false, "run all four methods and print a comparison")
	)
	flag.Parse()

	cfg := deeppower.Config{
		App:           *appName,
		Method:        *method,
		TrainEpisodes: *episodes,
		Duration:      deeppower.Time(*duration * float64(deeppower.Second)),
		TracePeriod:   deeppower.Time(*period * float64(deeppower.Second)),
		Workers:       *workers,
		PeakLoad:      *peak,
		Seed:          *seed,
	}

	switch {
	case *compare:
		runCompare(cfg)
	case *policy != "":
		runLoaded(cfg, *policy)
	case *save != "":
		trainAndSave(cfg, *save)
	default:
		res, err := deeppower.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
}

func runCompare(cfg deeppower.Config) {
	out, err := deeppower.Compare(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	base := out[deeppower.MethodBaseline]
	fmt.Printf("%-10s %10s %10s %12s %10s %8s\n",
		"method", "power(W)", "saving", "p99", "timeout%", "SLA met")
	for _, m := range []string{
		deeppower.MethodBaseline, deeppower.MethodRetail,
		deeppower.MethodGemini, deeppower.MethodDeepPower,
	} {
		r := out[m]
		saving := 1 - r.AvgPowerW/base.AvgPowerW
		fmt.Printf("%-10s %10.2f %9.1f%% %12v %10.3f %8v\n",
			m, r.AvgPowerW, saving*100, r.P99Latency, r.TimeoutRate*100, r.SLAMet)
	}
}

func runLoaded(cfg deeppower.Config, path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	pol, err := deeppower.LoadPolicy(f)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Policy = pol
	res, err := deeppower.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

func trainAndSave(cfg deeppower.Config, path string) {
	dp, err := deeppower.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := deeppower.SavePolicy(dp, f); err != nil {
		log.Fatal(err)
	}
	cfg.Policy = dp
	res, err := deeppower.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	log.Printf("policy saved to %s", path)
}
