// Customapp shows how to manage a latency-critical application that is NOT
// in the built-in Tailbench suite: define a service-time profile, build the
// simulation directly, and plug in any policy — here the bare thread
// controller (Algorithm 1) with hand-picked parameters, and then a custom
// queue-aware policy written from scratch.
//
// Run with:
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"github.com/deeppower/deeppower"
	"github.com/deeppower/deeppower/internal/app"
)

// newAdService models a hypothetical ad-ranking service: ~3 ms requests
// whose cost scales with candidate-set size, 10 ms SLA, light tail.
func newAdService() *deeppower.Profile {
	return &deeppower.Profile{
		Name:           "ad-ranker",
		SLA:            10 * deeppower.Millisecond,
		Workers:        6,
		RefFreq:        2.1,
		MemFrac:        0.2,
		ContentionCoef: 0.2,
		Sampler: &app.TailedSampler{
			BaseUS:     800,
			CoefUS:     1800,
			Sigma1:     0.5,
			Inter:      0.3,
			TypeMuls:   []float64{1},
			TypeProbs:  []float64{1},
			NoiseSigma: 0.1,
			TailProb:   0.01,
			TailScale:  4000,
			TailAlpha:  2.5,
		},
	}
}

// greedyPolicy is a minimal custom policy: queue empty → floor frequency,
// queue backed up → turbo. It shows the Policy surface end to end.
type greedyPolicy struct {
	ctl deeppower.Control
}

func (p *greedyPolicy) Name() string                 { return "greedy" }
func (p *greedyPolicy) Init(c deeppower.Control)     { p.ctl = c }
func (p *greedyPolicy) OnArrival(*deeppower.Request) {}
func (p *greedyPolicy) OnDispatch(r *deeppower.Request, core int) {
	p.ctl.SetFreq(core, p.ctl.Ladder().Max)
}
func (p *greedyPolicy) OnComplete(r *deeppower.Request, core int) {
	if p.ctl.CoreRequest(core) == nil {
		p.ctl.SetFreq(core, p.ctl.Ladder().Min)
	}
}
func (p *greedyPolicy) OnTick(now deeppower.Time) {
	if p.ctl.QueueLen() > p.ctl.NumCores() {
		for i := 0; i < p.ctl.NumCores(); i++ {
			p.ctl.SetTurbo(i)
		}
	}
}

func main() {
	log.SetFlags(0)
	prof := newAdService()
	if err := prof.Validate(); err != nil {
		log.Fatal(err)
	}

	// Offered load: a diurnal day compressed to 30 s, peaking at 60% of
	// the app's capacity at the reference frequency.
	peak := 0.6 * prof.MaxCapacity(prof.RefFreq, 1)
	trace := deeppower.DiurnalTrace(30*deeppower.Second, peak, 1)

	run := func(pol deeppower.Policy) *deeppower.ServerResult {
		eng := deeppower.NewEngine()
		srv, err := deeppower.NewServer(eng, deeppower.ServerConfig{
			App:  prof,
			Seed: 42,
		}, pol)
		if err != nil {
			log.Fatal(err)
		}
		res, err := srv.Run(trace, 60*deeppower.Second)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("custom application:", prof.Name,
		"| SLA", prof.SLA, "| mean service", prof.MeanService(1, 20000))

	// Two fixed thread-controller settings (Algorithm 1), then the custom
	// queue-aware policy.
	for _, pol := range []deeppower.Policy{
		mustController(0.5, 1.0),
		mustController(0.9, 0.3),
		&greedyPolicy{},
	} {
		res := run(pol)
		fmt.Printf("%-22s power=%6.2fW p99=%8.3fms timeout=%6.3f%% met=%v\n",
			res.Policy, res.AvgPowerW, res.Latency.P99*1000,
			res.TimeoutRate*100, res.SLAMet)
	}
}

func mustController(base, coef float64) deeppower.Policy {
	pol, err := deeppower.NewThreadController(deeppower.Params{
		BaseFreq: base, ScalingCoef: coef,
	})
	if err != nil {
		log.Fatal(err)
	}
	return pol
}
