// Sleepstates demonstrates the C-state extension (the paper's §6 future
// work): layering DynSleep-style idle sleeping over DVFS policies and
// measuring the power/latency trade against the wake-up cost.
//
// Run with:
//
//	go run ./examples/sleepstates
package main

import (
	"fmt"
	"log"

	"github.com/deeppower/deeppower"
)

func main() {
	log.SetFlags(0)
	prof, err := deeppower.AppByName(deeppower.Xapian)
	if err != nil {
		log.Fatal(err)
	}
	prof.Workers = 8

	// A light load leaves most cores idle most of the time — the regime
	// where sleep states pay off.
	rate := 0.15 * prof.MaxCapacity(prof.RefFreq, 1)
	trace := deeppower.ConstantTrace(rate)

	run := func(pol deeppower.Policy) *deeppower.ServerResult {
		eng := deeppower.NewEngine()
		srv, err := deeppower.NewServer(eng, deeppower.ServerConfig{App: prof, Seed: 7}, pol)
		if err != nil {
			log.Fatal(err)
		}
		res, err := srv.Run(trace, 20*deeppower.Second)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	controller, err := deeppower.NewThreadController(deeppower.Params{BaseFreq: 0.3, ScalingCoef: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	controllerSlept, err := deeppower.NewThreadController(deeppower.Params{BaseFreq: 0.3, ScalingCoef: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	wrapped := deeppower.WithSleep(controllerSlept)
	wrappedC1 := deeppower.WithSleep(mustController())
	wrappedC1.State = deeppower.C1

	fmt.Printf("%s at %.0f rps (%.0f%% load), 8 cores\n\n", prof.Name, rate, 15.0)
	fmt.Printf("%-24s %10s %12s %12s\n", "policy", "power(W)", "mean", "p99")
	for _, pol := range []deeppower.Policy{controller, wrappedC1, wrapped} {
		res := run(pol)
		fmt.Printf("%-24s %10.2f %12v %12v\n",
			res.Policy, res.AvgPowerW,
			deeppower.Time(res.Latency.Mean*1e9), deeppower.Time(res.Latency.P99*1e9))
	}
	fmt.Println("\nC6 saves the most idle power; its ~100µs wake-up is visible in the mean.")
}

func mustController() deeppower.Policy {
	pol, err := deeppower.NewThreadController(deeppower.Params{BaseFreq: 0.3, ScalingCoef: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	return pol
}
