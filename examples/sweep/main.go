// Sweep reproduces a Table 3-style load/latency characterization: for one
// application, it sweeps offered load from 10% to 90% of capacity and prints
// the latency distribution at each level, under a chosen fixed frequency.
//
// Run with:
//
//	go run ./examples/sweep              # xapian at 2.1 GHz
//	go run ./examples/sweep masstree 1.5
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"github.com/deeppower/deeppower"
)

func main() {
	log.SetFlags(0)
	appName := deeppower.Xapian
	ghz := 2.1
	if len(os.Args) > 1 {
		appName = os.Args[1]
	}
	if len(os.Args) > 2 {
		v, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatalf("bad frequency %q: %v", os.Args[2], err)
		}
		ghz = v
	}

	prof, err := deeppower.AppByName(appName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load sweep: %s at %.2g GHz (SLA %v, %d workers)\n\n",
		appName, ghz, prof.SLA, prof.Workers)
	fmt.Printf("%6s %10s %12s %12s %12s %10s\n",
		"load", "power(W)", "mean", "p99", "max", "timeout%")

	// One session, nine runs: every sweep point reuses the same warm
	// simulation engine instead of allocating a fresh one.
	session := deeppower.NewSession()
	for load := 0.1; load < 0.95; load += 0.1 {
		res, err := session.Run(deeppower.Config{
			App:         appName,
			Method:      fmt.Sprintf("fixed:%g", ghz),
			Duration:    30 * deeppower.Second,
			TracePeriod: 30 * deeppower.Second,
			PeakLoad:    load,
			Seed:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f%% %10.2f %12v %12v %12v %10.3f\n",
			load*100, res.AvgPowerW, res.MeanLatency, res.P99Latency,
			deeppower.Time(res.Raw.Latency.Max*1e9), res.TimeoutRate*100)
	}
}
