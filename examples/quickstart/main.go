// Quickstart: train a DeepPower policy on the Xapian search workload and
// evaluate it against the no-power-management baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/deeppower/deeppower"
)

func main() {
	log.SetFlags(0)

	// Small-scale configuration so the example finishes in seconds.
	// Drop Workers/Duration overrides for a paper-scale run.
	cfg := deeppower.Config{
		App:           deeppower.Xapian,
		Workers:       4,
		TrainEpisodes: 12,
		Duration:      40 * deeppower.Second,
		TracePeriod:   20 * deeppower.Second,
		PeakLoad:      0.7,
		Seed:          1,
	}

	fmt.Println("evaluating baseline (all cores at turbo)...")
	cfg.Method = deeppower.MethodBaseline
	base, err := deeppower.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", base)

	fmt.Println("training + evaluating DeepPower (hierarchical DRL control)...")
	cfg.Method = deeppower.MethodDeepPower
	dp, err := deeppower.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", dp)

	saving := 1 - dp.AvgPowerW/base.AvgPowerW
	fmt.Printf("\nDeepPower saves %.1f%% power vs the baseline (p99 %v vs SLA %v)\n",
		saving*100, dp.P99Latency, dp.SLA)
}
