// Compare reproduces one application's slice of the paper's Fig. 7: the
// no-management baseline, ReTail, Gemini, and DeepPower evaluated under an
// identical diurnal workload, reporting power, tail latency, and timeouts.
//
// Run with:
//
//	go run ./examples/compare            # xapian
//	go run ./examples/compare moses      # any Tailbench app name
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/deeppower/deeppower"
)

func main() {
	log.SetFlags(0)
	appName := deeppower.Xapian
	if len(os.Args) > 1 {
		appName = os.Args[1]
	}

	cfg := deeppower.Config{
		App:           appName,
		Workers:       4,
		TrainEpisodes: 8,
		Duration:      40 * deeppower.Second,
		TracePeriod:   20 * deeppower.Second,
		Seed:          1,
	}

	fmt.Printf("comparing methods on %s (profiling + training included)...\n\n", appName)
	results, err := deeppower.Compare(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	base := results[deeppower.MethodBaseline]
	fmt.Printf("%-10s %9s %8s %12s %12s %9s %7s\n",
		"method", "power(W)", "saving", "mean", "p99", "timeout%", "SLA")
	for _, m := range []string{
		deeppower.MethodBaseline, deeppower.MethodRetail,
		deeppower.MethodGemini, deeppower.MethodDeepPower,
	} {
		r := results[m]
		saving := 1 - r.AvgPowerW/base.AvgPowerW
		fmt.Printf("%-10s %9.2f %7.1f%% %12v %12v %9.3f %7v\n",
			m, r.AvgPowerW, saving*100, r.MeanLatency, r.P99Latency,
			r.TimeoutRate*100, r.SLAMet)
	}
	fmt.Printf("\nSLA for %s: %v\n", appName, base.SLA)
}
