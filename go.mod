module github.com/deeppower/deeppower

go 1.22
