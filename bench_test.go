package deeppower

// One benchmark per table and figure of the paper's evaluation (§5). Each
// bench regenerates its artifact at a reduced (benchmark-friendly) scale and
// reports domain metrics via b.ReportMetric; `cmd/repro` runs the same
// harnesses at full scale and writes the rendered tables to results/.

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/exp"
	"github.com/deeppower/deeppower/internal/results"
	"github.com/deeppower/deeppower/internal/sim"
)

// -update-bench rewrites results/BENCH_vec.json from the measurements of
// BenchmarkVectorTrainer, via the shared internal/results snapshot writer.
var updateBench = flag.Bool("update-bench", false,
	"rewrite results/BENCH_vec.json from this BenchmarkVectorTrainer run")

func benchScale() exp.Scale {
	s := exp.Quick()
	s.TrainEpisodes = 6
	return s
}

// BenchmarkFig1ServiceTimeCDF regenerates the normalized service-time CDFs
// (Fig. 1) and reports Moses' tail/mean skew.
func BenchmarkFig1ServiceTimeCDF(b *testing.B) {
	scale := benchScale()
	var skew float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig1(context.Background(), scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		skew = r.TailOverMean[app.Moses]
	}
	b.ReportMetric(skew, "moses-tail/mean")
}

// BenchmarkFig2RelativeRMSE regenerates the cross-load prediction-error
// heatmap (Fig. 2) for Masstree and reports the worst off-diagonal cell.
func BenchmarkFig2RelativeRMSE(b *testing.B) {
	scale := benchScale()
	scale.Samples = 1500
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig2(context.Background(), app.Masstree, scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		worst = r.MaxOffDiagonal()
	}
	b.ReportMetric(worst, "max-rel-rmse")
}

// BenchmarkTable2Inference regenerates the DRL inference-time table.
func BenchmarkTable2Inference(b *testing.B) {
	var r *exp.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.Table2(500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.InferenceUS["DDPG"], "ddpg-us")
	b.ReportMetric(r.InferenceUS["SAC"], "sac-us")
}

// BenchmarkTable3TailLatency regenerates the load/latency calibration table
// and reports Xapian's p99 at 70% load.
func BenchmarkTable3TailLatency(b *testing.B) {
	scale := benchScale()
	scale.Workers = 0 // paper worker counts
	var p99 float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Table3(context.Background(), scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		p99 = r.P99ms[app.Xapian][2]
	}
	b.ReportMetric(p99, "xapian-70%-p99-ms")
}

// BenchmarkFig4ControllerTrace regenerates the 2 s thread-controller
// frequency trace under a trained agent.
func BenchmarkFig4ControllerTrace(b *testing.B) {
	scale := benchScale()
	scale.TrainEpisodes = 2
	var samples int
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig4(context.Background(), scale)
		if err != nil {
			b.Fatal(err)
		}
		samples = len(r.Trace.Times)
	}
	b.ReportMetric(float64(samples), "trace-samples")
}

// BenchmarkFig5ScaleFunc regenerates the reward scaling curve.
func BenchmarkFig5ScaleFunc(b *testing.B) {
	var pts int
	for i := 0; i < b.N; i++ {
		pts = len(exp.Fig5(100).X)
	}
	b.ReportMetric(float64(pts), "points")
}

// BenchmarkFig6WorkloadTrace regenerates the diurnal trace.
func BenchmarkFig6WorkloadTrace(b *testing.B) {
	scale := benchScale()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = exp.Fig6(scale).Trace.MaxRate()
	}
	b.ReportMetric(peak, "peak-rps")
}

// BenchmarkFig7PowerComparison regenerates the headline comparison on
// Xapian (baseline / ReTail / Gemini / DeepPower) and reports DeepPower's
// power saving versus the baseline.
func BenchmarkFig7PowerComparison(b *testing.B) {
	scale := benchScale()
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig7(context.Background(), scale, []string{app.Xapian}, 1)
		if err != nil {
			b.Fatal(err)
		}
		saving = r.Saving(app.Xapian, exp.MethodDeepPower)
	}
	b.ReportMetric(saving*100, "dp-saving-%")
}

// BenchmarkFig8TimeSeries regenerates DeepPower's time-resolved run.
func BenchmarkFig8TimeSeries(b *testing.B) {
	scale := benchScale()
	scale.TrainEpisodes = 2
	var rows int
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig8(context.Background(), scale)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(r.Rows)
	}
	b.ReportMetric(float64(rows), "series-rows")
}

// BenchmarkFig9FreqTraceXapian regenerates the millisecond-level frequency
// trace for Xapian under DeepPower and reports its change granularity.
func BenchmarkFig9FreqTraceXapian(b *testing.B) {
	scale := benchScale()
	scale.TrainEpisodes = 8
	var changes int
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig9(context.Background(), exp.MethodDeepPower, scale)
		if err != nil {
			b.Fatal(err)
		}
		changes = r.Trace.Changes()
	}
	b.ReportMetric(float64(changes), "freq-changes")
}

// BenchmarkFig10FreqTraceSphinx does the same for the second-scale app.
func BenchmarkFig10FreqTraceSphinx(b *testing.B) {
	scale := benchScale()
	scale.TrainEpisodes = 8
	var changes int
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig10(context.Background(), exp.MethodDeepPower, scale)
		if err != nil {
			b.Fatal(err)
		}
		changes = r.Trace.Changes()
	}
	b.ReportMetric(float64(changes), "freq-changes")
}

// BenchmarkFig11FixedParams regenerates the fixed-parameter frequency
// heatmaps and reports the idle-floor spread between settings.
func BenchmarkFig11FixedParams(b *testing.B) {
	scale := benchScale()
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig11(context.Background(), scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		spread = r.Traces[2].MinFreq() - r.Traces[0].MinFreq()
	}
	b.ReportMetric(spread, "floor-spread-ghz")
}

// BenchmarkOverheadTrainStep regenerates the §5.5 overhead table's training
// row: one DDPG update at batch 64.
func BenchmarkOverheadTrainStep(b *testing.B) {
	r, err := exp.Overhead()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.TrainStepMS, "train-step-ms")
	b.ReportMetric(r.ActionGenUS, "action-us")
	b.ReportMetric(float64(r.ActorParams), "actor-params")
}

// BenchmarkVectorTrainer compares experience throughput — transitions into
// the replay pool per wall second — of the single-env trainer against the
// vectorized trainer at E ∈ {4, 8, 16} lockstep environments, training the
// same quick-scale Xapian configuration for the same episode count. With
// -update-bench it rewrites results/BENCH_vec.json.
func BenchmarkVectorTrainer(b *testing.B) {
	scale := benchScale()
	var rows []results.Bench
	derived := map[string]float64{}
	var singleTPS float64

	runConfig := func(b *testing.B, envs int) {
		setup, err := exp.NewSetup(app.Xapian, scale)
		if err != nil {
			b.Fatal(err)
		}
		var trans uint64
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var dp *DeepPowerPolicy
			if envs <= 1 {
				dp, err = setup.TrainDeepPower()
			} else {
				dp, err = setup.TrainDeepPowerVector(envs, 0)
			}
			if err != nil {
				b.Fatal(err)
			}
			trans = dp.Experience()
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		tps := float64(trans) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(tps, "transitions/sec")
		b.ReportMetric(float64(trans), "transitions")

		name := "single"
		if envs > 1 {
			name = fmt.Sprintf("E%d", envs)
		}
		rows = append(rows, results.Bench{
			Name:    "VectorTrainer/" + name,
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			Extra: map[string]float64{
				"envs":                float64(envs),
				"transitions":         float64(trans),
				"transitions_per_sec": tps,
			},
			BytesPerOp:  (m1.TotalAlloc - m0.TotalAlloc) / uint64(b.N),
			AllocsPerOp: (m1.Mallocs - m0.Mallocs) / uint64(b.N),
		})
		if envs <= 1 {
			singleTPS = tps
		} else if singleTPS > 0 {
			derived[fmt.Sprintf("speedup_e%d_vs_single", envs)] = tps / singleTPS
		}
	}

	for _, envs := range []int{1, 4, 8, 16} {
		name := "single"
		if envs > 1 {
			name = fmt.Sprintf("E%d", envs)
		}
		envs := envs
		b.Run(name, func(b *testing.B) { runConfig(b, envs) })
	}

	if *updateBench {
		derived["target_e8_speedup"] = 3.0
		snap := results.Snapshot{
			Command: "go test . -run '^$' -bench BenchmarkVectorTrainer -benchtime=1x -update-bench",
			CPU:     results.CPUModel(),
			Note: "experience throughput (replay transitions/sec) of vectorized lockstep training " +
				"vs the single-env trainer, quick-scale xapian, equal episode count",
			Benchmarks: rows,
			Derived:    derived,
		}
		if err := results.Write("results/BENCH_vec.json", snap); err != nil {
			b.Fatal(err)
		}
		b.Log("wrote results/BENCH_vec.json")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: virtual
// seconds of a loaded 8-core server per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof := app.MustByName(app.Xapian)
	prof.Workers = 8
	rate := 0.7 * prof.MaxCapacity(prof.RefFreq, 1)
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			App:     app.Xapian,
			Workers: 8,
			Method:  MethodBaseline,
			// One diurnal period.
			Duration:    10 * sim.Second,
			TracePeriod: 10 * sim.Second,
			PeakLoad:    0.7,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	_ = rate
}
