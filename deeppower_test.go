package deeppower

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{
		App:           Xapian,
		Workers:       4,
		TrainEpisodes: 4,
		Duration:      20 * Second,
		TracePeriod:   20 * Second,
		Seed:          1,
	}
}

func TestApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("apps = %v", apps)
	}
	for _, a := range apps {
		p, err := AppByName(a)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != a {
			t.Errorf("AppByName(%q).Name = %q", a, p.Name)
		}
	}
	if _, err := AppByName("redis"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunBaseline(t *testing.T) {
	cfg := quickCfg()
	cfg.Method = MethodBaseline
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerW <= 0 || res.Requests == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Method != "baseline" {
		t.Errorf("method = %q", res.Method)
	}
	if !strings.Contains(res.String(), "baseline") {
		t.Error("String() missing method")
	}
}

func TestRunFixedAndController(t *testing.T) {
	cfg := quickCfg()
	cfg.Method = "fixed:1.5"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgFreqGHz < 1.45 || res.AvgFreqGHz > 1.55 {
		t.Errorf("fixed:1.5 avg freq = %v", res.AvgFreqGHz)
	}
	cfg.Method = "controller:0.5,0.8"
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"fixed:abc", "controller:1", "controller:a,b", "nope"} {
		cfg.Method = bad
		if _, err := Run(cfg); err == nil {
			t.Errorf("method %q accepted", bad)
		}
	}
}

func TestRunDeepPowerSavesPower(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := quickCfg()
	cfg.TrainEpisodes = 8
	base, err := Run(withMethod(cfg, MethodBaseline))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Run(withMethod(cfg, MethodDeepPower))
	if err != nil {
		t.Fatal(err)
	}
	if dp.AvgPowerW >= base.AvgPowerW {
		t.Errorf("DeepPower %vW not below baseline %vW", dp.AvgPowerW, base.AvgPowerW)
	}
}

func withMethod(c Config, m string) Config {
	c.Method = m
	return c
}

func TestCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-method run")
	}
	cfg := quickCfg()
	out, err := Compare(cfg, []string{MethodBaseline, MethodRetail})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("results = %v", out)
	}
	if out[MethodRetail].AvgPowerW >= out[MethodBaseline].AvgPowerW {
		t.Error("retail not below baseline")
	}
}

func TestTrainSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := quickCfg()
	cfg.TrainEpisodes = 2
	dp, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePolicy(dp, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = loaded
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Error("loaded policy produced no completions")
	}
}

func TestDiurnalTrace(t *testing.T) {
	tr := DiurnalTrace(60*Second, 500, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if peak := tr.MaxRate(); peak < 499 || peak > 501 {
		t.Errorf("peak = %v, want 500", peak)
	}
	ct := ConstantTrace(100)
	if ct.RateAt(5*Second) != 100 {
		t.Error("constant trace wrong")
	}
}

func TestPeakLoadOverride(t *testing.T) {
	cfg := quickCfg()
	cfg.Method = MethodBaseline
	cfg.PeakLoad = 0.2
	lo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PeakLoad = 0.8
	hi, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Requests <= lo.Requests {
		t.Errorf("higher peak load served fewer requests: %d vs %d", hi.Requests, lo.Requests)
	}
}

func TestNewServerDirect(t *testing.T) {
	prof, err := AppByName(Masstree)
	if err != nil {
		t.Fatal(err)
	}
	prof.Workers = 2
	eng := NewEngine()
	srv, err := NewServer(eng, ServerConfig{App: prof, Seed: 1}, &maxPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(ConstantTrace(1000), 2*Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Completions == 0 {
		t.Error("no completions")
	}
}

type maxPolicy struct{}

func (p *maxPolicy) Name() string { return "max" }
func (p *maxPolicy) Init(c Control) {
	for i := 0; i < c.NumCores(); i++ {
		c.SetTurbo(i)
	}
}
func (p *maxPolicy) OnTick(Time)              {}
func (p *maxPolicy) OnArrival(*Request)       {}
func (p *maxPolicy) OnDispatch(*Request, int) {}
func (p *maxPolicy) OnComplete(*Request, int) {}

func TestRunRubik(t *testing.T) {
	cfg := quickCfg()
	cfg.Method = MethodRubik
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "rubik" || res.Requests == 0 {
		t.Fatalf("degenerate rubik result: %+v", res)
	}
}

func TestWithSleepFacade(t *testing.T) {
	inner, err := NewThreadController(Params{BaseFreq: 0.4, ScalingCoef: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	w := WithSleep(inner)
	w.State = C1
	cfg := quickCfg()
	cfg.Method = MethodBaseline
	cfg.Policy = w
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Error("no completions under sleep wrapper")
	}
}

func TestNewDQNPowerFacade(t *testing.T) {
	dq, err := NewDQNPower(DQNPowerConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Policy = dq
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Error("no completions under DQN power policy")
	}
}
