// Package deeppower is a full reimplementation of "DeepPower: Deep
// Reinforcement Learning based Power Management for Latency Critical
// Applications in Multi-core Systems" (ICPP 2023).
//
// The package exposes a high-level API to train and evaluate power-management
// policies — DeepPower's hierarchical DRL controller and the ReTail, Gemini
// and no-management baselines — against simulated Tailbench-like
// latency-critical applications on a DVFS-capable multi-core socket.
//
// Quickstart:
//
//	res, err := deeppower.Run(deeppower.Config{App: deeppower.Xapian})
//	fmt.Println(res)
//
// Advanced users can reach the underlying machinery through the exported
// aliases (Profile, Policy, Trace, …) and assemble simulations directly.
package deeppower

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/exp"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/power"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// Built-in application names (the paper's Tailbench suite, Table 3).
const (
	Xapian   = app.Xapian
	Masstree = app.Masstree
	Moses    = app.Moses
	Sphinx   = app.Sphinx
	ImgDNN   = app.ImgDNN
)

// Method names accepted by Config.Method.
const (
	MethodDeepPower = exp.MethodDeepPower
	MethodBaseline  = exp.MethodBaseline
	MethodRetail    = exp.MethodRetail
	MethodGemini    = exp.MethodGemini
	MethodRubik     = exp.MethodRubik
)

// Aliases into the library's building blocks, for users going beyond the
// high-level API.
type (
	// Profile describes a latency-critical application.
	Profile = app.Profile
	// Work is one request's demand and features.
	Work = app.Work
	// Policy is a pluggable power-management strategy.
	Policy = server.Policy
	// Control is the actuation/observation handle policies receive.
	Control = server.Control
	// Request is one in-flight request.
	Request = server.Request
	// ServerConfig configures the simulated server.
	ServerConfig = server.Config
	// ServerResult is a full simulation result.
	ServerResult = server.Result
	// Trace is a request-rate trace.
	Trace = workload.Trace
	// Ladder is a DVFS frequency ladder.
	Ladder = cpu.Ladder
	// Freq is a core frequency in GHz.
	Freq = cpu.Freq
	// PowerModel is the socket power model.
	PowerModel = power.Model
	// Params are the thread controller's two knobs.
	Params = control.Params
	// DeepPowerPolicy is the trained/trainable DRL policy.
	DeepPowerPolicy = agent.DeepPower
	// AgentConfig parameterizes the DRL policy.
	AgentConfig = agent.Config
	// Time is virtual simulation time in nanoseconds.
	Time = sim.Time
	// Scale selects experiment sizes (exp.Quick / exp.Full).
	Scale = exp.Scale
	// CState is a core sleep state (the §6 sleep-state extension).
	CState = cpu.CState
	// SleepWrapper layers C-state management over any DVFS policy.
	SleepWrapper = baselines.SleepWrapper
	// DQNPowerPolicy is the discrete (value-based) DeepPower variant.
	DQNPowerPolicy = agent.DQNPower
	// DQNPowerConfig parameterizes DQNPowerPolicy.
	DQNPowerConfig = agent.DQNPowerConfig
	// FaultPlan is a reproducible fault-injection campaign (see
	// internal/fault): seed-driven DVFS actuation faults, sensor noise,
	// core failures/throttling, and load bursts.
	FaultPlan = fault.Plan
	// ActuationPlan configures DVFS actuation faults (latency, jitter,
	// dropped and stuck governor writes) inside a FaultPlan.
	ActuationPlan = fault.ActuationPlan
	// SensorPlan configures telemetry faults (energy-counter noise, stale
	// or partial snapshots, queue-length jitter) inside a FaultPlan.
	SensorPlan = fault.SensorPlan
	// CorePlan configures per-core failures and thermal throttling inside
	// a FaultPlan.
	CorePlan = fault.CorePlan
	// LoadPlan configures arrival-burst injection inside a FaultPlan.
	LoadPlan = fault.LoadPlan
	// FaultInjector realizes a FaultPlan against a running server; plug it
	// into ServerConfig.Faults for advanced use.
	FaultInjector = fault.Injector
	// GuardedPolicy is the watchdog wrapper that validates inner-policy
	// actions and falls back to a max-frequency safe mode on QoS breach.
	GuardedPolicy = fault.GuardedPolicy
	// GuardConfig tunes the watchdog's health window and backoff.
	GuardConfig = fault.GuardConfig
)

// Sleep states re-exported for convenience.
const (
	C0 = cpu.C0
	C1 = cpu.C1
	C6 = cpu.C6
)

// WithSleep wraps a policy so cores idle longer than the default grace
// period drop into C6 and wake (paying the wake latency) on dispatch.
func WithSleep(inner Policy) *SleepWrapper {
	return baselines.NewSleepWrapper(inner)
}

// WithGuard wraps a policy in the guarded-policy watchdog with default
// settings: invalid actions are rejected, and the system degrades to a
// max-frequency safe mode when the sliding-window timeout rate or tail
// latency breaches its health limits, re-engaging the inner policy with
// exponential backoff once health recovers.
func WithGuard(inner Policy) *GuardedPolicy {
	return fault.WithGuard(inner)
}

// NewFaultInjector realizes a fault plan for a server with numCores worker
// cores. Most callers use Config.FaultPlan instead.
func NewFaultInjector(plan FaultPlan, numCores int) (*FaultInjector, error) {
	return fault.NewInjector(plan, numCores)
}

// NewDQNPower builds the discrete-action DeepPower variant.
func NewDQNPower(cfg DQNPowerConfig) (*DQNPowerPolicy, error) {
	return agent.NewDQNPower(cfg)
}

// Time constants re-exported for convenience.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Apps returns the built-in application names.
func Apps() []string { return app.Names() }

// AppByName returns a fresh profile of a built-in application.
func AppByName(name string) (*Profile, error) { return app.ByName(name) }

// DefaultLadder returns the Xeon-like DVFS ladder used in the evaluation.
func DefaultLadder() Ladder { return cpu.DefaultLadder() }

// DefaultPowerModel returns the calibrated socket power model.
func DefaultPowerModel() PowerModel { return power.DefaultModel() }

// DiurnalTrace synthesizes the diurnal e-commerce workload (Fig. 6) with the
// given period and peak request rate.
func DiurnalTrace(period Time, peakRPS float64, seed int64) *Trace {
	cfg := workload.DefaultDiurnal()
	cfg.Period = period
	cfg.Buckets = int(period.Seconds())
	if cfg.Buckets < 10 {
		cfg.Buckets = 10
	}
	cfg.Seed = seed
	return workload.Diurnal(cfg).ScaleToPeak(peakRPS)
}

// ConstantTrace returns a fixed-rate trace.
func ConstantTrace(rps float64) *Trace {
	return workload.Constant(rps, sim.Second)
}

// Config drives the high-level Run API.
type Config struct {
	// App is a built-in application name (default Xapian).
	App string
	// Workers overrides the worker/core count (0 keeps the paper's).
	Workers int
	// Method selects the power-management policy (default MethodDeepPower).
	// "fixed:<ghz>" pins all cores, e.g. "fixed:1.5"; "controller:<b>,<s>"
	// runs the bare thread controller with fixed parameters.
	Method string
	// TrainEpisodes is how many trace periods DeepPower trains for
	// (default 10; ignored by other methods).
	TrainEpisodes int
	// Duration is the evaluated virtual time (default 120 s).
	Duration Time
	// TracePeriod is the diurnal period (default 120 s).
	TracePeriod Time
	// PeakLoad scales the trace's crest as a fraction of the app's
	// reference-frequency capacity (default: the per-app evaluation value).
	PeakLoad float64
	// Seed drives all randomness (default 1).
	Seed int64
	// Policy, when non-nil, overrides Method with a caller-built policy.
	Policy Policy
	// FaultPlan, when non-nil, runs the evaluation under the given
	// fault-injection campaign (training still happens on the clean
	// system, as it would in a healthy staging environment).
	FaultPlan *FaultPlan
	// Guard wraps the evaluated policy in the guarded-policy watchdog.
	Guard bool
	// GuardConfig tunes the watchdog when Guard is set (zero = defaults).
	GuardConfig GuardConfig
}

func (c Config) withDefaults() Config {
	if c.App == "" {
		c.App = Xapian
	}
	if c.Method == "" {
		c.Method = MethodDeepPower
	}
	if c.TrainEpisodes == 0 {
		c.TrainEpisodes = 10
	}
	if c.Duration == 0 {
		c.Duration = 120 * sim.Second
	}
	if c.TracePeriod == 0 {
		c.TracePeriod = 120 * sim.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) scale() Scale {
	return Scale{
		Workers:       c.Workers,
		TrainEpisodes: c.TrainEpisodes,
		EvalDuration:  c.Duration,
		TracePeriod:   c.TracePeriod,
		Samples:       20000,
		Seed:          c.Seed,
	}
}

// Result is the high-level outcome of one Run.
type Result struct {
	App    string
	Method string
	// AvgPowerW is the mean socket power over the measured window.
	AvgPowerW float64
	// EnergyJ is the measured socket energy.
	EnergyJ float64
	// MeanLatency and P99Latency summarize end-to-end latency.
	MeanLatency, P99Latency Time
	// SLA echoes the application's requirement; SLAMet is P99 <= SLA.
	SLA    Time
	SLAMet bool
	// TimeoutRate is the fraction of completed requests over SLA.
	TimeoutRate float64
	// TimeoutBudgetMet is the paper's Eq. 2 constraint: timeouts <= 1%.
	TimeoutBudgetMet bool
	// Requests is the number of completed requests.
	Requests uint64
	// AvgFreqGHz is the time-weighted mean core frequency.
	AvgFreqGHz float64
	// Raw gives access to the full simulation result.
	Raw *ServerResult
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: power=%.1fW p99=%v (SLA %v, met=%v) timeout=%.3f%% reqs=%d",
		r.App, r.Method, r.AvgPowerW, r.P99Latency, r.SLA, r.SLAMet,
		r.TimeoutRate*100, r.Requests)
}

// Session runs repeated evaluations on one reused simulation engine: each
// Run resets the engine, recycling its warm event arena and free lists
// instead of growing fresh ones per call. Use it for sweeps and comparisons
// that evaluate many configurations back to back; results are identical to
// the package-level Run.
type Session struct {
	eng *Engine
}

// NewSession returns a session with a fresh engine.
func NewSession() *Session { return &Session{eng: sim.NewEngine()} }

// Run is the package-level Run on the session's warm engine.
func (s *Session) Run(cfg Config) (*Result, error) { return run(s.eng, cfg) }

// Run executes one (application, method) evaluation: it builds the scaled
// diurnal workload, profiles/trains the selected method, evaluates it, and
// returns the summary.
func Run(cfg Config) (*Result, error) { return run(nil, cfg) }

// run implements Run; a nil engine means "build a fresh one per call".
func run(eng *Engine, cfg Config) (*Result, error) {
	full := cfg.withDefaults()
	setup, err := exp.NewSetup(full.App, full.scale())
	if err != nil {
		return nil, err
	}
	if full.PeakLoad > 0 {
		setup.Trace = setup.Trace.ScaleToPeak(
			full.PeakLoad * setup.Prof.MaxCapacity(setup.Prof.RefFreq, full.Seed))
	}
	pol := full.Policy
	if pol == nil {
		pol, err = buildMethod(setup, full.Method)
		if err != nil {
			return nil, err
		}
	}
	if full.Guard {
		pol = fault.NewGuardedPolicy(pol, full.GuardConfig)
	}
	var res *ServerResult
	switch {
	case full.FaultPlan != nil:
		res, err = setup.EvaluateUnderFaults(pol, *full.FaultPlan)
	case eng != nil:
		res, err = setup.EvaluateOn(eng, pol)
	default:
		res, err = setup.Evaluate(pol)
	}
	if err != nil {
		return nil, err
	}
	return summarize(full.App, pol.Name(), res), nil
}

func buildMethod(setup *exp.Setup, method string) (Policy, error) {
	switch {
	case strings.HasPrefix(method, "fixed:"):
		ghz, err := strconv.ParseFloat(strings.TrimPrefix(method, "fixed:"), 64)
		if err != nil {
			return nil, fmt.Errorf("deeppower: bad fixed method %q: %w", method, err)
		}
		return baselines.NewFixedFreq(Freq(ghz)), nil
	case strings.HasPrefix(method, "controller:"):
		parts := strings.Split(strings.TrimPrefix(method, "controller:"), ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("deeppower: controller method needs \"controller:<base>,<coef>\"")
		}
		b, err1 := strconv.ParseFloat(parts[0], 64)
		s, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("deeppower: bad controller parameters %q", method)
		}
		return control.NewThreadController(Params{BaseFreq: b, ScalingCoef: s}), nil
	default:
		return setup.BuildPolicy(method)
	}
}

func summarize(appName, method string, res *ServerResult) *Result {
	return &Result{
		App:              appName,
		Method:           method,
		AvgPowerW:        res.AvgPowerW,
		EnergyJ:          res.EnergyJ,
		MeanLatency:      sim.Seconds(res.Latency.Mean),
		P99Latency:       sim.Seconds(res.Latency.P99),
		SLA:              res.SLA,
		SLAMet:           res.SLAMet,
		TimeoutRate:      res.TimeoutRate,
		TimeoutBudgetMet: res.TimeoutBudgetMet,
		Requests:         res.Counters.Completions,
		AvgFreqGHz:       res.AvgFreqGHz,
		Raw:              res,
	}
}

// Compare evaluates several methods on one application under identical
// workloads and seeds, returning results keyed by method name.
func Compare(cfg Config, methods []string) (map[string]*Result, error) {
	full := cfg.withDefaults()
	if methods == nil {
		methods = []string{MethodBaseline, MethodRetail, MethodGemini, MethodDeepPower}
	}
	out := make(map[string]*Result, len(methods))
	s := NewSession() // evaluations share one warm engine
	for _, m := range methods {
		c := full
		c.Method = m
		c.Policy = nil
		res, err := s.Run(c)
		if err != nil {
			return nil, fmt.Errorf("deeppower: comparing %s: %w", m, err)
		}
		out[m] = res
	}
	return out, nil
}

// Train trains a DeepPower policy for the configured application and
// workload and returns it, ready for SavePolicy or reuse via Config.Policy.
func Train(cfg Config) (*DeepPowerPolicy, error) {
	full := cfg.withDefaults()
	setup, err := exp.NewSetup(full.App, full.scale())
	if err != nil {
		return nil, err
	}
	return setup.TrainDeepPower()
}

// TrainVector trains a DeepPower policy like Train, but on envs simulated
// environments (0 = default 8) advanced in lockstep through one shared
// learner and replay pool (see internal/agent.VectorTrainer). Experience
// enters the replay pool several times faster than single-env training at
// the same episode count; results are byte-identical at any workers value
// (0 = all cores).
func TrainVector(cfg Config, envs, workers int) (*DeepPowerPolicy, error) {
	full := cfg.withDefaults()
	setup, err := exp.NewSetup(full.App, full.scale())
	if err != nil {
		return nil, err
	}
	return setup.TrainDeepPowerVector(envs, workers)
}

// SavePolicy writes a trained policy's actor network.
func SavePolicy(dp *DeepPowerPolicy, w io.Writer) error { return dp.SavePolicy(w) }

// LoadPolicy builds an inference-mode DeepPower policy from a saved actor.
func LoadPolicy(r io.Reader) (*DeepPowerPolicy, error) {
	dp, err := agent.New(agent.Config{})
	if err != nil {
		return nil, err
	}
	if err := dp.LoadPolicy(r); err != nil {
		return nil, err
	}
	return dp, nil
}

// NewThreadController returns the paper's bottom-layer controller
// (Algorithm 1) as a standalone policy with fixed parameters.
func NewThreadController(p Params) (Policy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return control.NewThreadController(p), nil
}

// NewServer assembles a raw simulation for advanced use: callers drive the
// engine directly and may plug in custom policies, ladders, and power
// models. See examples/customapp.
func NewServer(eng *Engine, cfg ServerConfig, pol Policy) (*Server, error) {
	return server.New(eng, cfg, pol)
}

// Engine is the discrete-event simulation engine.
type Engine = sim.Engine

// Server is the simulated latency-critical system.
type Server = server.Server

// NewEngine returns a fresh virtual-time engine.
func NewEngine() *Engine { return sim.NewEngine() }
