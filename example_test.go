package deeppower_test

import (
	"fmt"

	"github.com/deeppower/deeppower"
)

// Evaluate the no-power-management baseline on a small Xapian setup.
func ExampleRun() {
	res, err := deeppower.Run(deeppower.Config{
		App:         deeppower.Xapian,
		Method:      deeppower.MethodBaseline,
		Workers:     2,
		Duration:    10 * deeppower.Second,
		TracePeriod: 10 * deeppower.Second,
		PeakLoad:    0.3,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Method, res.SLAMet)
	// Output: baseline true
}

// Pin every core at a fixed frequency with the "fixed:<ghz>" method.
func ExampleRun_fixedFrequency() {
	res, err := deeppower.Run(deeppower.Config{
		App:         deeppower.Masstree,
		Method:      "fixed:1.5",
		Workers:     2,
		Duration:    5 * deeppower.Second,
		TracePeriod: 5 * deeppower.Second,
		PeakLoad:    0.2,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f GHz\n", res.AvgFreqGHz)
	// Output: 1.5 GHz
}

// Run the paper's thread controller (Algorithm 1) with fixed parameters.
func ExampleNewThreadController() {
	pol, err := deeppower.NewThreadController(deeppower.Params{
		BaseFreq:    0.5,
		ScalingCoef: 0.8,
	})
	if err != nil {
		panic(err)
	}
	res, err := deeppower.Run(deeppower.Config{
		App:         deeppower.Xapian,
		Workers:     2,
		Duration:    5 * deeppower.Second,
		TracePeriod: 5 * deeppower.Second,
		PeakLoad:    0.3,
		Seed:        1,
		Policy:      pol,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Requests > 0)
	// Output: true
}

// Synthesize the paper's diurnal workload trace (Fig. 6).
func ExampleDiurnalTrace() {
	trace := deeppower.DiurnalTrace(60*deeppower.Second, 1000, 1)
	fmt.Printf("peak %.0f rps over %v\n", trace.MaxRate(), trace.Period)
	// Output: peak 1000 rps over 60s
}
